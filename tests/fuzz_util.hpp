// Deterministic structure-aware fuzzing utilities shared by
// tests/wire_fuzz_test.cpp and bench/fuzz_campaign.cpp.
//
// The mutator is seeded with the repo's own Rng (xoshiro256**), so a given
// (seed, base frame) pair always yields the same mutation sequence — corpus
// reproduction needs nothing beyond the seed printed by a failing run.
//
// Mutation grammar (one op per mutate() call, chosen uniformly):
//   bit-flips     1-8 single-bit flips at random offsets
//   byte-stomp    1-4 bytes overwritten with random values
//   field-swap    two 4-byte windows exchanged (header field transposition)
//   length-lie    a 16- or 32-bit big-endian boundary value (0, 1, 2^n-1,
//                 size-1, size, size+1, 0xFFFF, 0xFFFFFFFF) written over a
//                 random offset — targets every length/offset field
//   truncate      resize to a random prefix (models cut-off frames)
//   extend        1-64 random trailing bytes (models trailing garbage)
//   splice        prefix of this frame + suffix of a second valid frame
//                 (models mid-stream resync and fragment interleave bugs)
#pragma once

#include <algorithm>

#include "common/buffer.hpp"
#include "common/rng.hpp"

namespace dgiwarp::fuzz {

class Mutator {
 public:
  explicit Mutator(u64 seed) : rng_(seed) {}

  Rng& rng() { return rng_; }

  /// One mutated copy of `base`. When `other` is non-empty the splice op is
  /// in the pool; otherwise six ops are. Never reads outside base/other.
  Bytes mutate(ConstByteSpan base, ConstByteSpan other = {}) {
    Bytes out(base.begin(), base.end());
    const u64 op = rng_.below(other.empty() ? 6 : 7);
    switch (op) {
      case 0: {  // bit flips
        if (out.empty()) break;
        const u64 n = 1 + rng_.below(8);
        for (u64 i = 0; i < n; ++i)
          out[rng_.below(out.size())] ^= static_cast<u8>(1u << rng_.below(8));
        break;
      }
      case 1: {  // byte stomp
        if (out.empty()) break;
        const u64 n = 1 + rng_.below(4);
        for (u64 i = 0; i < n; ++i)
          out[rng_.below(out.size())] = static_cast<u8>(rng_.next_u64());
        break;
      }
      case 2: {  // 4-byte field swap
        if (out.size() < 8) break;
        const std::size_t a = rng_.below(out.size() - 3);
        const std::size_t b = rng_.below(out.size() - 3);
        for (int i = 0; i < 4; ++i) std::swap(out[a + i], out[b + i]);
        break;
      }
      case 3: {  // length lie: boundary value over a plausible field
        if (out.size() < 2) break;
        static constexpr u64 kBoundary[] = {0,      1,      2,          0x7F,
                                            0x80,   0xFF,   0x7FFF,     0x8000,
                                            0xFFFF, 1u << 20, 0x7FFFFFFF, 0xFFFFFFFF};
        u64 v = kBoundary[rng_.below(std::size(kBoundary))];
        switch (rng_.below(3)) {  // also aim near the true size
          case 0: v = out.size() > 0 ? out.size() - 1 : 0; break;
          case 1: v = out.size() + 1; break;
          default: break;
        }
        if (out.size() >= 4 && rng_.chance(0.5)) {
          const std::size_t at = rng_.below(out.size() - 3);
          for (int i = 0; i < 4; ++i)
            out[at + i] = static_cast<u8>(v >> (8 * (3 - i)));
        } else {
          const std::size_t at = rng_.below(out.size() - 1);
          out[at] = static_cast<u8>(v >> 8);
          out[at + 1] = static_cast<u8>(v);
        }
        break;
      }
      case 4: {  // truncate
        out.resize(rng_.below(out.size() + 1));
        break;
      }
      case 5: {  // extend with trailing garbage
        const u64 n = 1 + rng_.below(64);
        for (u64 i = 0; i < n; ++i)
          out.push_back(static_cast<u8>(rng_.next_u64()));
        break;
      }
      case 6: {  // splice two valid frames
        const std::size_t cut = rng_.below(out.size() + 1);
        const std::size_t from = rng_.below(other.size() + 1);
        out.resize(cut);
        out.insert(out.end(), other.begin() + static_cast<long>(from),
                   other.end());
        break;
      }
    }
    return out;
  }

 private:
  Rng rng_;
};

}  // namespace dgiwarp::fuzz
