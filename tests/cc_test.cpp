// Congestion-control subsystem tests: RateController unit behaviour (DCQCN
// MD/recovery, Timely gradient), ECN marking and tail drop at sim links,
// the RD CNP-echo path end to end, verbs UD mark counting, and the
// determinism / no-new-registry-keys guarantees the default configuration
// depends on.
#include <gtest/gtest.h>

#include "cc/cc.hpp"
#include "hoststack/host.hpp"
#include "rd/reliable.hpp"
#include "simnet/fabric.hpp"
#include "simnet/topology.hpp"
#include "verbs/device.hpp"
#include "verbs/qp_ud.hpp"

namespace dgiwarp {
namespace {

TEST(CcMode, Names) {
  EXPECT_STREQ(cc::cc_mode_name(cc::CcMode::kOff), "off");
  EXPECT_STREQ(cc::cc_mode_name(cc::CcMode::kDcqcn), "dcqcn");
  EXPECT_STREQ(cc::cc_mode_name(cc::CcMode::kTimely), "timely");
}

TEST(RateController, ReserveSendSpacesPacketsAtTheFlowRate) {
  sim::Simulation sim;
  cc::CcParams p;
  cc::RateController rc(sim, cc::CcMode::kDcqcn, p);

  const TimeNs first = rc.reserve_send(1, 1024);
  EXPECT_EQ(first, 0);  // line-rate flow starts immediately
  const TimeNs second = rc.reserve_send(1, 1024);
  // (1024 + overhead) bytes at 10G is ~872 ns: the second packet must wait
  // its serialization slot, not burst at t=0.
  EXPECT_GT(second, first);
  EXPECT_LT(second, 2 * kMicrosecond);
  // Independent flows do not share the token clock.
  EXPECT_EQ(rc.reserve_send(2, 1024), 0);
}

TEST(RateController, DcqcnCnpCutsRateAndTimersRecoverToLine) {
  sim::Simulation sim;
  cc::CcParams p;
  cc::RateController rc(sim, cc::CcMode::kDcqcn, p);
  (void)rc.reserve_send(7, 1024);  // materialize the flow

  rc.on_cnp(7);
  EXPECT_EQ(rc.cnps(), 1u);
  EXPECT_GE(rc.rate_decreases(), 1u);
  const double cut = rc.rate_bps(7);
  EXPECT_LT(cut, p.line_rate_bps);

  // The alpha-decay and rate-recovery timers must be self-terminating:
  // run() returning at all proves they disarm, and full recovery must end
  // snapped to exactly line rate.
  sim.run();
  EXPECT_EQ(rc.rate_bps(7), p.line_rate_bps);
}

TEST(RateController, DcqcnRepeatedCnpsRespectTheMinRateFloor) {
  sim::Simulation sim;
  cc::CcParams p;
  cc::RateController rc(sim, cc::CcMode::kDcqcn, p);
  for (int i = 0; i < 500; ++i) rc.on_cnp(3);
  EXPECT_GE(rc.rate_bps(3), p.min_rate_bps);
  sim.run();
  EXPECT_EQ(rc.rate_bps(3), p.line_rate_bps);
}

TEST(RateController, TimelyGradientReactsToRttTrend) {
  sim::Simulation sim;
  cc::CcParams p;
  cc::RateController rc(sim, cc::CcMode::kTimely, p);

  // Calm RTTs below t_low keep the flow at line rate (additive increase is
  // clamped there).
  rc.on_rtt_sample(1, 12 * kMicrosecond);
  rc.on_rtt_sample(1, 12 * kMicrosecond);
  EXPECT_EQ(rc.rate_bps(1), p.line_rate_bps);

  // An RTT past t_high forces multiplicative decrease regardless of the
  // gradient sign.
  rc.on_rtt_sample(1, 300 * kMicrosecond);
  const double cut = rc.rate_bps(1);
  EXPECT_LT(cut, p.line_rate_bps);
  EXPECT_GE(rc.rate_decreases(), 1u);

  // Draining queues (negative gradient, RTT back under t_low) climb back
  // additively.
  rc.on_rtt_sample(1, 12 * kMicrosecond);
  EXPECT_GT(rc.rate_bps(1), cut);

  // Timely runs on samples only — no timers to drain.
  sim.run();
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(RateController, ModesIgnoreTheOtherModesSignal) {
  sim::Simulation sim;
  cc::CcParams p;
  cc::RateController timely(sim, cc::CcMode::kTimely, p);
  timely.on_cnp(1);
  EXPECT_EQ(timely.cnps(), 0u);
  EXPECT_EQ(timely.rate_bps(1), p.line_rate_bps);

  cc::RateController dcqcn(sim, cc::CcMode::kDcqcn, p);
  dcqcn.on_rtt_sample(1, kSecond);  // would be a massive Timely cut
  EXPECT_EQ(dcqcn.rate_bps(1), p.line_rate_bps);
}

// Two hosts on one slow-linked leaf: back-to-back sends outrun the wire,
// so the sender's uplink queue actually builds (at 10G the host CPU model
// paces submissions below line rate and the queue never forms).
struct SlowNet {
  explicit SlowNet(double bps) {
    sim::Topology::Params p;
    p.host_link.bandwidth_bps = bps;
    topo = std::make_unique<sim::Topology>(p);
    a = std::make_unique<host::Host>(*topo, "a");
    b = std::make_unique<host::Host>(*topo, "b");
    sa = *a->udp().open(100);
    sb = *b->udp().open(100);
  }
  std::unique_ptr<sim::Topology> topo;
  std::unique_ptr<host::Host> a, b;
  host::UdpSocket* sa;
  host::UdpSocket* sb;
};

TEST(LinkCc, EcnMarksFramesAboveTheThreshold) {
  SlowNet n(100e6);
  n.topo->host_uplink(0).set_ecn_threshold(4);
  const Bytes msg = make_pattern(1024, 1);
  for (int i = 0; i < 30; ++i)
    (void)n.sa->send_to({n.b->addr(), 100}, ConstByteSpan{msg});
  n.topo->sim().run();

  EXPECT_EQ(n.sb->datagrams_received(), 30u);  // marking never drops
  EXPECT_GT(n.topo->host_uplink(0).stats().frames_marked.value(), 0u);
  EXPECT_EQ(n.topo->host_uplink(0).stats().queue_drops.value(), 0u);
  // The counters surfaced in the registry because the feature is on.
  const std::string json = n.topo->sim().telemetry().to_json();
  EXPECT_NE(json.find("\"cc.marks\""), std::string::npos);
}

TEST(LinkCc, BoundedQueueTailDropsWithoutConsumingWireTime) {
  SlowNet n(100e6);
  n.topo->host_uplink(0).set_queue_capacity(8);
  const Bytes msg = make_pattern(1024, 2);
  for (int i = 0; i < 40; ++i)
    (void)n.sa->send_to({n.b->addr(), 100}, ConstByteSpan{msg});
  n.topo->sim().run();

  const auto link = n.topo->host_uplink(0);
  EXPECT_GT(link.stats().queue_drops.value(), 0u);
  EXPECT_LT(n.sb->datagrams_received(), 40u);
  // Tail drop refuses at the bound; the backlog never exceeds it.
  EXPECT_LE(link.max_queue_depth(), 8u);
  EXPECT_EQ(link.stats().queue_drops.value(),
            link.stats().frames_dropped.value());
}

rd::RdConfig cc_rd_config(cc::CcMode mode) {
  rd::RdConfig cfg;
  cfg.cc_mode = mode;
  cfg.max_retries = 40;
  return cfg;
}

TEST(RdCc, DcqcnCnpEchoEndToEnd) {
  SlowNet n(100e6);
  n.topo->host_uplink(0).set_ecn_threshold(2);
  const rd::RdConfig cfg = cc_rd_config(cc::CcMode::kDcqcn);
  rd::ReliableDatagram tx(n.a->ctx(), *n.sa, cfg);
  rd::ReliableDatagram rx(n.b->ctx(), *n.sb, cfg);

  std::size_t delivered = 0;
  rx.on_datagram([&](rd::Endpoint, Bytes, bool) { ++delivered; });
  const Bytes msg = make_pattern(1024, 3);
  for (int i = 0; i < 40; ++i)
    ASSERT_TRUE(tx.send_to({n.b->addr(), 100}, ConstByteSpan{msg}).ok());
  n.topo->sim().run();

  EXPECT_EQ(delivered, 40u);  // congestion control never costs reliability
  // Signal path end to end: CE mark at the link -> rx counts it -> CNP
  // echo flag on an ACK -> tx's controller reacts.
  EXPECT_GT(rx.stats().ecn_rx.value(), 0u);
  EXPECT_GT(rx.stats().cnps_tx.value(), 0u);
  ASSERT_NE(tx.congestion(), nullptr);
  EXPECT_GT(tx.congestion()->cnps(), 0u);
  EXPECT_GT(tx.congestion()->rate_decreases(), 0u);
  EXPECT_EQ(tx.stats().acks_rx.value(), rx.stats().acks_tx.value());

  const std::string json = n.topo->sim().telemetry().to_json();
  EXPECT_NE(json.find("\"rd.ecn_rx\""), std::string::npos);
  EXPECT_NE(json.find("\"rd.cnps_tx\""), std::string::npos);
  EXPECT_NE(json.find("\"cc.cnps\""), std::string::npos);
}

TEST(RdCc, TimelyCutsRateFromRttInflationAlone) {
  // No ECN threshold anywhere: Timely must sense the standing queue purely
  // from ACK RTT samples.
  SlowNet n(50e6);
  const rd::RdConfig cfg = cc_rd_config(cc::CcMode::kTimely);
  rd::ReliableDatagram tx(n.a->ctx(), *n.sa, cfg);
  rd::ReliableDatagram rx(n.b->ctx(), *n.sb, cfg);

  std::size_t delivered = 0;
  rx.on_datagram([&](rd::Endpoint, Bytes, bool) { ++delivered; });
  const Bytes msg = make_pattern(1024, 4);
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(tx.send_to({n.b->addr(), 100}, ConstByteSpan{msg}).ok());
  n.topo->sim().run();

  EXPECT_EQ(delivered, 50u);
  ASSERT_NE(tx.congestion(), nullptr);
  EXPECT_GT(tx.congestion()->rate_decreases(), 0u);
  EXPECT_EQ(rx.stats().cnps_tx.value(), 0u);  // CNP echo is DCQCN-only
}

TEST(RdCc, CcOffAddsNoRegistryKeysAndNoController) {
  sim::Fabric fabric;
  host::Host a(fabric, "a"), b(fabric, "b");
  rd::ReliableDatagram tx(a.ctx(), **a.udp().open(100), {});
  rd::ReliableDatagram rx(b.ctx(), **b.udp().open(100), {});
  std::size_t delivered = 0;
  rx.on_datagram([&](rd::Endpoint, Bytes, bool) { ++delivered; });
  const Bytes msg = make_pattern(512, 5);
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(tx.send_to({b.addr(), 100}, ConstByteSpan{msg}).ok());
  fabric.sim().run();

  EXPECT_EQ(delivered, 10u);
  EXPECT_EQ(tx.congestion(), nullptr);
  // The determinism contract for every seeded fig5-fig11 reproduction:
  // the default configuration must not grow any cc-related registry keys.
  const std::string json = fabric.sim().telemetry().to_json();
  EXPECT_EQ(json.find("\"cc."), std::string::npos);
  EXPECT_EQ(json.find("\"rd.ecn_rx\""), std::string::npos);
  EXPECT_EQ(json.find("\"rd.cnps_tx\""), std::string::npos);
  EXPECT_EQ(json.find("\"simnet.link.queue_drops\""), std::string::npos);
}

TEST(RdCc, DcqcnRunsAreDeterministic) {
  auto run = [] {
    SlowNet n(100e6);
    n.topo->host_uplink(0).set_ecn_threshold(2);
    n.topo->host_uplink(0).set_queue_capacity(16);
    const rd::RdConfig cfg = cc_rd_config(cc::CcMode::kDcqcn);
    rd::ReliableDatagram tx(n.a->ctx(), *n.sa, cfg);
    rd::ReliableDatagram rx(n.b->ctx(), *n.sb, cfg);
    rx.on_datagram([](rd::Endpoint, Bytes, bool) {});
    const Bytes msg = make_pattern(1024, 6);
    for (int i = 0; i < 30; ++i)
      (void)tx.send_to({n.b->addr(), 100}, ConstByteSpan{msg});
    n.topo->sim().run();
    return n.topo->sim().telemetry().to_json();
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

TEST(VerbsCc, UdCountsEcnMarkedArrivals) {
  sim::Fabric fabric;
  host::Host a(fabric, "a"), b(fabric, "b");
  verbs::DeviceConfig cfg;
  cfg.rd.cc_mode = cc::CcMode::kDcqcn;  // plumbing: DeviceConfig -> RD
  verbs::Device dev_a(a, cfg), dev_b(b, cfg);
  auto& pd_a = dev_a.create_pd();
  auto& pd_b = dev_b.create_pd();
  auto& cq_a = dev_a.create_cq();
  auto& cq_b = dev_b.create_cq();
  auto qa = *dev_a.create_ud_qp({&pd_a, &cq_a, &cq_a, 0, false});
  auto qb = *dev_b.create_ud_qp({&pd_b, &cq_b, &cq_b, 0, false});

  // Mark aggressively: a 128 KB message is several back-to-back datagrams,
  // so later frames see a non-empty uplink queue.
  fabric.uplink(0).set_ecn_threshold(1);

  Bytes msg = make_pattern(128 * KiB, 7);
  Bytes sink(128 * KiB, 0);
  ASSERT_TRUE(qb->post_recv(verbs::RecvWr{1, ByteSpan{sink}}).ok());
  verbs::SendWr wr;
  wr.wr_id = 2;
  wr.local = ConstByteSpan{msg};
  wr.remote = {qb->local_ep(), qb->qpn()};
  ASSERT_TRUE(qa->post_send(wr).ok());
  fabric.sim().run();

  auto wc = cq_b.poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_TRUE(wc->status.ok());
  EXPECT_GT(qb->stats().ecn_rx.value(), 0u);
  EXPECT_NE(fabric.sim().telemetry().to_json().find("\"verbs.ud.ecn_rx\""),
            std::string::npos);
}

}  // namespace
}  // namespace dgiwarp
