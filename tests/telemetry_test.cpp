// Telemetry subsystem: registry aggregation, the Metric dual view, trace
// ring bounds, observer ordering, the cost profiler and deterministic JSON
// export.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "perf/harness.hpp"
#include "simnet/simulation.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/registry.hpp"

namespace dgiwarp {
namespace {

using telemetry::Registry;
using telemetry::TraceKind;

TEST(Telemetry, CounterAggregatesAcrossMetrics) {
  Registry reg;
  telemetry::Metric a, b;
  a.bind(reg.counter("layer.thing.events"));
  b.bind(reg.counter("layer.thing.events"));

  ++a;
  a += 4;
  b.inc(2);

  // Instance-local views stay per-object...
  EXPECT_EQ(a, 5u);
  EXPECT_EQ(b, 2u);
  // ...while the registry holds the cross-instance aggregate.
  EXPECT_EQ(reg.counter_value("layer.thing.events"), 7u);
  EXPECT_TRUE(reg.has("layer.thing.events"));
  EXPECT_FALSE(reg.has("layer.thing.nonsense"));
}

TEST(Telemetry, MetricKeepsU64Semantics) {
  telemetry::Metric m;  // unbound: behaves exactly like the old u64 field
  ++m;
  m += 9;
  const u64 v = m;
  EXPECT_EQ(v, 10u);
  EXPECT_EQ(static_cast<unsigned long long>(m), 10ull);
}

TEST(Telemetry, GaugeTracksMax) {
  Registry reg;
  auto& g = reg.gauge("layer.q.depth");
  g.set(3);
  g.set(11);
  g.set(2);
  EXPECT_EQ(g.value(), 2.0);
  EXPECT_EQ(g.max(), 11.0);
}

TEST(Telemetry, HistogramExactPercentiles) {
  Registry reg;
  auto& h = reg.histogram("layer.lat.us");
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_GE(h.percentile(99), 99.0);
  EXPECT_LE(h.percentile(50), 51.0);
}

TEST(Telemetry, TraceRingBoundsMemory) {
  Registry reg;
  reg.trace().enable(16);
  for (u64 i = 0; i < 100; ++i)
    reg.trace().record(TraceKind::kLinkDrop, i, 1500);

  EXPECT_EQ(reg.trace().capacity(), 16u);
  EXPECT_EQ(reg.trace().recorded(), 100u);
  EXPECT_EQ(reg.trace().dropped(), 84u);

  const auto events = reg.trace().snapshot();
  ASSERT_EQ(events.size(), 16u);
  // Oldest first, and only the newest 16 survive.
  EXPECT_EQ(events.front().a, 84u);
  EXPECT_EQ(events.back().a, 99u);
}

// kTraceKindCount must track the enum: every value below it has a real
// name, and the one-past-the-end value hits the "?" fallback. Adding an
// enumerator without bumping the constant (or vice versa) fails here.
TEST(Telemetry, TraceKindNamesAreExhaustive) {
  std::set<std::string> names;
  for (u8 k = 0; k < telemetry::kTraceKindCount; ++k) {
    const char* name = trace_kind_name(static_cast<TraceKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "missing name for TraceKind " << int(k);
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate TraceKind name " << name;
  }
  EXPECT_STREQ(trace_kind_name(static_cast<TraceKind>(
                   telemetry::kTraceKindCount)),
               "?");
}

// Same contract for the span/profiler vocabularies introduced with them.
TEST(Telemetry, SpanAndCostNamesAreExhaustive) {
  for (u8 s = 0; s < telemetry::kStageCount; ++s)
    EXPECT_STRNE(telemetry::stage_name(static_cast<telemetry::Stage>(s)),
                 "?");
  EXPECT_STREQ(telemetry::stage_name(
                   static_cast<telemetry::Stage>(telemetry::kStageCount)),
               "?");
  for (u8 p = 0; p < telemetry::kSpanPhaseCount; ++p)
    EXPECT_STRNE(
        telemetry::span_phase_name(static_cast<telemetry::SpanPhase>(p)),
        "?");
  for (u8 l = 0; l < telemetry::kCostLayerCount; ++l)
    EXPECT_STRNE(
        telemetry::cost_layer_name(static_cast<telemetry::CostLayer>(l)),
        "?");
  for (u8 a = 0; a < telemetry::kCostActivityCount; ++a)
    EXPECT_STRNE(
        telemetry::cost_activity_name(static_cast<telemetry::CostActivity>(a)),
        "?");
  for (u8 c = 0; c < telemetry::kSizeClassCount; ++c)
    EXPECT_STRNE(telemetry::size_class_name(c), "?");
}

// Wraparound across several full cycles: the ring keeps exactly the newest
// `capacity` events in order, dropped() counts the rest, and re-enabling
// clears everything.
TEST(Telemetry, TraceRingWrapsAroundRepeatedly) {
  Registry reg;
  reg.trace().enable(8);
  for (u64 i = 0; i < 8; ++i)
    reg.trace().record(TraceKind::kLinkDeliver, i, 0);
  EXPECT_EQ(reg.trace().dropped(), 0u);  // exactly full: nothing lost yet

  for (u64 i = 8; i < 8 * 3 + 5; ++i)
    reg.trace().record(TraceKind::kLinkDeliver, i, 0);
  const auto events = reg.trace().snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].a, 8 * 3 + 5 - 8 + i);  // newest 8, oldest first
  EXPECT_EQ(reg.trace().recorded(), 8u * 3 + 5);
  EXPECT_EQ(reg.trace().dropped(), 8u * 3 + 5 - 8);

  reg.trace().enable(4);  // re-enable clears and resizes
  EXPECT_EQ(reg.trace().recorded(), 0u);
  EXPECT_TRUE(reg.trace().snapshot().empty());
  EXPECT_EQ(reg.trace().capacity(), 4u);
}

// The clock-wiring footgun documented in trace.hpp: a ring (and span
// tracker) obtained through a Registry stamps real virtual time even when
// enabled before any simulation event ran — the Registry constructor wires
// the clock, not enable(). A standalone TraceRing has no time source and
// stamps 0 by design.
TEST(Telemetry, RegistryWiresClocksAtConstruction) {
  sim::Simulation s;
  auto& reg = s.telemetry();
  reg.trace().enable();      // enabled before any event ever executed
  reg.spans().enable();
  u64 span = 0;
  s.at(123, [&] {
    reg.trace().record(TraceKind::kLinkDrop, 7, 0);
    span = reg.spans().begin(telemetry::SpanKind::kMessage, "t", 1, 64);
  });
  s.at(200, [&] { reg.spans().end(span, true); });
  s.run();
  const auto events = reg.trace().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].t, 123);
  ASSERT_EQ(reg.spans().finished().size(), 1u);
  EXPECT_EQ(reg.spans().finished()[0].start, 123);
  EXPECT_EQ(reg.spans().finished()[0].end, 200);

  telemetry::TraceRing standalone;  // no Registry, no clock: stamps 0
  standalone.enable();
  standalone.record(TraceKind::kLinkDrop, 1, 0);
  ASSERT_EQ(standalone.snapshot().size(), 1u);
  EXPECT_EQ(standalone.snapshot()[0].t, 0);
}

TEST(Telemetry, ProfilerBucketsByLayerActivityAndSizeClass) {
  telemetry::CostProfiler prof;
  const telemetry::CostSite crc{telemetry::CostLayer::kMpa,
                                telemetry::CostActivity::kCrc, 1432};
  prof.record(crc, 100);  // disabled: must not land anywhere
  EXPECT_EQ(prof.total_ns(), 0u);

  prof.enable();
  prof.record(crc, 100);
  prof.record(crc, 50);
  prof.record({telemetry::CostLayer::kMpa, telemetry::CostActivity::kCrc,
               64 * 1024},
              1000);
  prof.record({telemetry::CostLayer::kVerbs, telemetry::CostActivity::kPost,
               0},
              30);

  const auto& b = prof.bucket(telemetry::CostLayer::kMpa,
                              telemetry::CostActivity::kCrc,
                              telemetry::size_class_of(1432));
  EXPECT_EQ(b.count, 2u);
  EXPECT_EQ(b.total_ns, 150u);
  EXPECT_EQ(b.total_bytes, 2u * 1432);
  EXPECT_EQ(prof.total_ns(telemetry::CostLayer::kMpa), 1150u);
  EXPECT_EQ(prof.total_ns(), 1180u);

  // Different size classes stay apart.
  EXPECT_NE(telemetry::size_class_of(1432), telemetry::size_class_of(64 * 1024));
  EXPECT_EQ(telemetry::size_class_of(0), 0);
  EXPECT_EQ(telemetry::size_class_of(1), telemetry::size_class_of(64));
  EXPECT_NE(telemetry::size_class_of(64), telemetry::size_class_of(65));

  // merge_from is bucket-wise additive; to_json is deterministic.
  telemetry::CostProfiler other;
  other.enable();
  other.record(crc, 25);
  prof.merge_from(other);
  EXPECT_EQ(prof.bucket(telemetry::CostLayer::kMpa,
                        telemetry::CostActivity::kCrc,
                        telemetry::size_class_of(1432))
                .total_ns,
            175u);
  EXPECT_EQ(prof.to_json(), prof.to_json());
  EXPECT_NE(prof.to_json().find("\"crc\""), std::string::npos);
  EXPECT_FALSE(prof.table().empty());
}

TEST(Telemetry, TraceDisabledByDefaultRecordsNothing) {
  Registry reg;
  reg.trace().record(TraceKind::kLinkDrop, 1, 2);
  EXPECT_FALSE(reg.trace().enabled());
  EXPECT_EQ(reg.trace().recorded(), 0u);
  EXPECT_TRUE(reg.trace().snapshot().empty());
}

TEST(Telemetry, NullSinkIsCompileTimeNoop) {
  static_assert(telemetry::TraceSinkLike<telemetry::NullSink>);
  static_assert(telemetry::TraceSinkLike<telemetry::TraceRing>);
  static_assert(telemetry::NullSink::kNoop);
  constexpr telemetry::NullSink sink;
  static_assert(!sink.enabled());
  sink.record(TraceKind::kLinkDrop, 1, 2);  // constexpr no-op
}

TEST(Telemetry, TraceEventsStampedWithVirtualTime) {
  sim::Simulation s;
  auto& reg = s.telemetry();
  reg.trace().enable();
  s.at(100, [&] { reg.trace().record(TraceKind::kLinkDrop, 1, 0); });
  s.at(250, [&] { reg.trace().record(TraceKind::kLinkDeliver, 2, 0); });
  s.run();
  const auto events = reg.trace().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].t, 100);
  EXPECT_EQ(events[1].t, 250);
  EXPECT_EQ(reg.now(), s.now());
}

TEST(Telemetry, ObserverSeesEventsInOrder) {
  struct Recorder : sim::SimObserver {
    std::vector<std::pair<TimeNs, u64>> seen;
    void on_event(TimeNs t, u64 seq) override { seen.emplace_back(t, seq); }
  };
  sim::Simulation s;
  Recorder rec;
  s.set_observer(&rec);
  s.at(50, [] {});
  s.at(10, [&s] { s.after(5, [] {}); });
  s.at(10, [] {});  // same timestamp: FIFO order via seq
  s.run();
  s.set_observer(nullptr);

  ASSERT_EQ(rec.seen.size(), 4u);
  for (std::size_t i = 1; i < rec.seen.size(); ++i) {
    EXPECT_GE(rec.seen[i].first, rec.seen[i - 1].first);  // monotone in t
    // Same-timestamp events observe FIFO scheduling order via seq.
    if (rec.seen[i].first == rec.seen[i - 1].first) {
      EXPECT_GT(rec.seen[i].second, rec.seen[i - 1].second);
    }
  }
  EXPECT_EQ(rec.seen[0].first, 10);
  EXPECT_EQ(rec.seen[1].first, 10);
  EXPECT_EQ(rec.seen[2].first, 15);
  EXPECT_EQ(rec.seen[3].first, 50);
}

TEST(Telemetry, MergeFoldsRegistries) {
  Registry total, a, b;
  telemetry::Metric ma, mb;
  ma.bind(a.counter("x.count"));
  mb.bind(b.counter("x.count"));
  ma += 3;
  mb += 4;
  a.gauge("x.depth").set(5);
  b.gauge("x.depth").set(9);
  a.histogram("x.lat").add(1.0);
  b.histogram("x.lat").add(3.0);

  total.merge_from(a);
  total.merge_from(b);

  EXPECT_EQ(total.counter_value("x.count"), 7u);
  EXPECT_EQ(total.gauge("x.depth").max(), 9.0);
  ASSERT_NE(total.find_histogram("x.lat"), nullptr);
  EXPECT_EQ(total.find_histogram("x.lat")->count(), 2u);
  EXPECT_DOUBLE_EQ(total.find_histogram("x.lat")->mean(), 2.0);
}

// The acceptance criterion: a lossy UD run populates metrics from at least
// four distinct layers, and two same-seed runs export byte-identical JSON.
TEST(Telemetry, LossyRunCoversLayersAndIsDeterministic) {
  auto run_once = [](std::string& json_out) {
    Registry metrics;
    perf::Options opts;
    opts.loss_rate = 0.01;
    opts.seed = 1234;
    opts.metrics = &metrics;
    (void)perf::measure_bandwidth(perf::Mode::kUdSendRecv, 256 * 1024, 8,
                                  opts);
    json_out = metrics.to_json();

    EXPECT_TRUE(metrics.has("simnet.link.drops"));          // simnet
    EXPECT_TRUE(metrics.has("hoststack.ip.datagrams_tx"));  // hoststack
    EXPECT_TRUE(metrics.has("verbs.cq.completions"));       // verbs
    EXPECT_TRUE(metrics.has("rdmap.write_record.chunks"));  // rdmap
    EXPECT_GT(metrics.counter_value("simnet.link.drops"), 0u);
  };
  std::string j1, j2;
  run_once(j1);
  run_once(j2);
  EXPECT_FALSE(j1.empty());
  EXPECT_EQ(j1, j2);  // byte-identical for the same seed
  EXPECT_NE(j1.find("\"schema\": \"dgiwarp.telemetry.v1\""),
            std::string::npos);
}

TEST(Telemetry, CorruptedRunCountersAreDeterministic) {
  // The corruption counters introduced with the fault family — link-level
  // frames_corrupted, CRC drops, and the escape oracle — must reproduce
  // byte-for-byte across runs with the same seed, and must tell a coherent
  // story: with the CRC on, every corrupted datagram is dropped, none
  // escape.
  auto run_once = [](bool crc_on, u64& corrupted, u64& drops, u64& escapes) {
    Registry metrics;
    perf::Options opts;
    opts.seed = 777;
    opts.metrics = &metrics;
    opts.ud_crc = crc_on;
    opts.data_faults = [] { return sim::Faults::bit_errors(2e-4); };
    (void)perf::measure_bandwidth(perf::Mode::kUdSendRecv, 256 * 1024, 8,
                                  opts);
    corrupted = metrics.counter_value("simnet.link.frames_corrupted");
    drops = metrics.counter_value("verbs.ud.crc_drops");
    escapes = metrics.counter_value("verbs.ud.crc_escapes");
    return metrics.to_json();
  };

  u64 corrupted1 = 0, drops1 = 0, escapes1 = 0;
  u64 corrupted2 = 0, drops2 = 0, escapes2 = 0;
  const std::string j1 = run_once(true, corrupted1, drops1, escapes1);
  const std::string j2 = run_once(true, corrupted2, drops2, escapes2);
  EXPECT_EQ(j1, j2);  // byte-identical for the same seed
  EXPECT_GT(corrupted1, 0u);
  EXPECT_GT(drops1, 0u);
  EXPECT_EQ(escapes1, 0u);  // CRC on: nothing corrupt gets through
  EXPECT_EQ(corrupted1, corrupted2);
  EXPECT_EQ(drops1, drops2);

  // CRC off: same channel, but now the corruption escapes — and the taint
  // oracle measures exactly that instead of silently losing it.
  u64 corrupted3 = 0, drops3 = 0, escapes3 = 0;
  const std::string j3 = run_once(false, corrupted3, drops3, escapes3);
  EXPECT_GT(corrupted3, 0u);
  EXPECT_EQ(drops3, 0u);
  EXPECT_GT(escapes3, 0u);
  EXPECT_NE(j1, j3);
}

}  // namespace
}  // namespace dgiwarp
