// Cross-module integration tests: behaviours that only emerge when the
// whole stack runs together — reordering, bursty loss, mixed traffic,
// applications over degraded links, and the perf harness itself.
#include <gtest/gtest.h>

#include "apps/media/media.hpp"
#include "apps/sip/agents.hpp"
#include "perf/harness.hpp"
#include "simnet/fabric.hpp"
#include "verbs/qp_rc.hpp"
#include "verbs/qp_ud.hpp"

namespace dgiwarp {
namespace {

using verbs::RecvWr;
using verbs::SendWr;
using verbs::WcOpcode;
using verbs::WrOpcode;

struct Rig {
  explicit Rig(verbs::DeviceConfig cfg = {})
      : a(fabric, "a"), b(fabric, "b"), dev_a(a, cfg), dev_b(b, cfg),
        pd_a(dev_a.create_pd()), pd_b(dev_b.create_pd()),
        cq_a(dev_a.create_cq()), cq_b(dev_b.create_cq()) {}
  sim::Fabric fabric;
  host::Host a, b;
  verbs::Device dev_a, dev_b;
  verbs::ProtectionDomain& pd_a;
  verbs::ProtectionDomain& pd_b;
  verbs::CompletionQueue& cq_a;
  verbs::CompletionQueue& cq_b;
};

TEST(Integration, UdSurvivesFrameReordering) {
  // Jitter + reorder on the data path: untagged UD messages carry MO, so
  // out-of-order arrival within a message must still assemble correctly.
  Rig r;
  auto qa = *r.dev_a.create_ud_qp({&r.pd_a, &r.cq_a, &r.cq_a, 0, false});
  auto qb = *r.dev_b.create_ud_qp({&r.pd_b, &r.cq_b, &r.cq_b, 0, false});
  sim::Faults f;
  f.reorder_rate = 0.3;
  f.reorder_delay = 40 * kMicrosecond;
  f.jitter = 5 * kMicrosecond;
  r.fabric.uplink(0).set_faults(std::move(f));

  // Multi-datagram message: datagram-level reordering across segments.
  Bytes msg = make_pattern(200 * KiB, 17);
  Bytes sink(200 * KiB, 0);
  ASSERT_TRUE(qb->post_recv(RecvWr{1, ByteSpan{sink}}).ok());
  SendWr wr;
  wr.local = ConstByteSpan{msg};
  wr.remote = {qb->local_ep(), qb->qpn()};
  ASSERT_TRUE(qa->post_send(wr).ok());
  r.fabric.sim().run();

  bool done = false;
  while (auto c = r.cq_b.poll())
    if (c->status.ok() && c->opcode == WcOpcode::kRecv) done = true;
  // Reordered IP fragments break kernel reassembly only if delayed past
  // the reassembly timeout, which this jitter cannot do.
  ASSERT_TRUE(done);
  EXPECT_EQ(sink, msg);
}

TEST(Integration, WriteRecordUnderBurstLoss) {
  // Gilbert-Elliott bursts: whole trains of fragments die together, the
  // worst case for fragmented datagrams; partial placement must still
  // report only genuinely-placed ranges.
  verbs::DeviceConfig cfg;
  cfg.ud_message_timeout = 10 * kMillisecond;
  Rig r(cfg);
  auto qa = *r.dev_a.create_ud_qp({&r.pd_a, &r.cq_a, &r.cq_a, 0, false});
  auto qb = *r.dev_b.create_ud_qp({&r.pd_b, &r.cq_b, &r.cq_b, 0, false});
  sim::Faults f;
  f.loss = std::make_unique<sim::GilbertElliottLoss>(0.002, 0.1, 0.0, 0.9);
  r.fabric.uplink(0).set_faults(std::move(f));

  Bytes region(512 * KiB, 0);
  auto mr = r.pd_b.register_memory(ByteSpan{region},
                                   verbs::kLocalWrite | verbs::kRemoteWrite);
  Bytes msg = make_pattern(512 * KiB, 23);
  for (int i = 0; i < 8; ++i) {
    SendWr wr;
    wr.opcode = WrOpcode::kWriteRecord;
    wr.local = ConstByteSpan{msg};
    wr.remote = {qb->local_ep(), qb->qpn()};
    wr.remote_stag = mr.stag;
    ASSERT_TRUE(qa->post_send(wr).ok());
  }
  r.fabric.sim().run();

  int records = 0;
  while (auto c = r.cq_b.poll()) {
    if (c->opcode != WcOpcode::kRecvWriteRecord) continue;
    ++records;
    // Every reported range must hold exactly the sender's bytes.
    for (const auto& range : c->validity.ranges()) {
      ASSERT_LE(range.offset + range.length, msg.size());
      EXPECT_TRUE(std::equal(msg.begin() + range.offset,
                             msg.begin() + range.offset + range.length,
                             region.begin() + range.offset));
    }
  }
  // Some records complete (possibly partial); some lose their final
  // segment entirely. Both outcomes are legal; silence on all 8 is not.
  EXPECT_GT(records + static_cast<int>(qb->stats().expired_records), 0);
  EXPECT_EQ(qb->state(), verbs::QpState::kRts);
}

TEST(Integration, MixedRcAndUdTrafficShareOneHostPair) {
  // An RC connection and a UD QP between the same two hosts, used
  // concurrently — the demux (TCP vs UDP, ports) must keep them apart.
  Rig r;
  auto ud_a = *r.dev_a.create_ud_qp({&r.pd_a, &r.cq_a, &r.cq_a, 0, false});
  auto ud_b = *r.dev_b.create_ud_qp({&r.pd_b, &r.cq_b, &r.cq_b, 0, false});
  std::shared_ptr<verbs::RcQueuePair> rc_b;
  ASSERT_TRUE(r.dev_b
                  .rc_listen(900, {&r.pd_b, &r.cq_b, &r.cq_b},
                             [&](auto qp) { rc_b = std::move(qp); })
                  .ok());
  auto rc_a = *r.dev_a.rc_connect({&r.pd_a, &r.cq_a, &r.cq_a},
                                  r.b.endpoint(900));
  r.fabric.sim().run_while_pending([&] { return rc_b != nullptr; }, kSecond);
  ASSERT_NE(rc_b, nullptr);

  Bytes ud_msg = make_pattern(10'000, 1);
  Bytes rc_msg = make_pattern(20'000, 2);
  Bytes ud_sink(10'000, 0), rc_sink(20'000, 0);
  ASSERT_TRUE(ud_b->post_recv(RecvWr{1, ByteSpan{ud_sink}}).ok());
  ASSERT_TRUE(rc_b->post_recv(RecvWr{2, ByteSpan{rc_sink}}).ok());

  SendWr ud_wr;
  ud_wr.local = ConstByteSpan{ud_msg};
  ud_wr.remote = {ud_b->local_ep(), ud_b->qpn()};
  ASSERT_TRUE(ud_a->post_send(ud_wr).ok());
  SendWr rc_wr;
  rc_wr.local = ConstByteSpan{rc_msg};
  ASSERT_TRUE(rc_a->post_send(rc_wr).ok());
  r.fabric.sim().run();

  int got = 0;
  while (auto c = r.cq_b.poll())
    if (c->status.ok() && c->opcode == WcOpcode::kRecv) ++got;
  EXPECT_EQ(got, 2);
  EXPECT_EQ(ud_sink, ud_msg);
  EXPECT_EQ(rc_sink, rc_msg);
}

TEST(Integration, ManyConcurrentWriteRecordSourcesOneTarget) {
  // Several sources write-record into disjoint slots of one target region
  // through one QP — the connectionless fan-in the paper motivates.
  sim::Fabric fabric;
  host::Host target_host(fabric, "target");
  verbs::Device target_dev(target_host);
  auto& pd = target_dev.create_pd();
  auto& cq = target_dev.create_cq();
  auto target = *target_dev.create_ud_qp({&pd, &cq, &cq, 5000, false});

  constexpr std::size_t kSources = 6;
  constexpr std::size_t kSlot = 8 * KiB;
  Bytes region(kSources * kSlot, 0);
  auto mr = pd.register_memory(ByteSpan{region},
                               verbs::kLocalWrite | verbs::kRemoteWrite);

  std::vector<std::unique_ptr<host::Host>> hosts;
  std::vector<std::unique_ptr<verbs::Device>> devs;
  std::vector<std::shared_ptr<verbs::UdQueuePair>> qps;
  std::vector<Bytes> payloads;
  for (std::size_t i = 0; i < kSources; ++i) {
    hosts.push_back(
        std::make_unique<host::Host>(fabric, "src" + std::to_string(i)));
    devs.push_back(std::make_unique<verbs::Device>(*hosts.back()));
    auto& spd = devs.back()->create_pd();
    auto& scq = devs.back()->create_cq();
    qps.push_back(*devs.back()->create_ud_qp({&spd, &scq, &scq, 0, false}));
    payloads.push_back(make_pattern(kSlot, static_cast<u32>(i + 100)));
    SendWr wr;
    wr.opcode = WrOpcode::kWriteRecord;
    wr.local = ConstByteSpan{payloads.back()};
    wr.remote = {target->local_ep(), target->qpn()};
    wr.remote_stag = mr.stag;
    wr.remote_offset = i * kSlot;
    ASSERT_TRUE(qps.back()->post_send(wr).ok());
  }
  fabric.sim().run();

  std::set<u64> bases;
  while (auto c = cq.poll())
    if (c->opcode == WcOpcode::kRecvWriteRecord) bases.insert(c->base_to);
  EXPECT_EQ(bases.size(), kSources);
  for (std::size_t i = 0; i < kSources; ++i)
    EXPECT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(),
                           region.begin() + static_cast<long>(i * kSlot)));
}

TEST(Integration, MediaOverReliableDatagramsSurvivesLoss) {
  // RD-mode sockets under 2% loss: the stream arrives gap-free, the
  // paper's "reliable UDP" option at the application level.
  isock::ISockConfig cfg;
  cfg.reliable_dgram = true;
  sim::Fabric fabric;
  host::Host server_host(fabric, "server"), client_host(fabric, "client");
  verbs::Device dev_s(server_host), dev_c(client_host);
  isock::ISockStack io_s(dev_s, cfg), io_c(dev_c, cfg);
  fabric.uplink(0).set_faults(sim::Faults::bernoulli(0.02));

  media::StreamParams p;
  p.burst_start = false;
  p.bitrate_bps = 8e6;
  media::MediaServer server(io_s, p);
  ASSERT_TRUE(server.serve_udp(7000, 2 * MiB).ok());
  media::MediaClient client(io_c);
  auto res = client.run_udp(server_host.endpoint(7000), 256 * KiB,
                            20 * kSecond);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.sequence_gaps, 0u) << "RD must repair the 2% loss";
}

TEST(Integration, SipCallsSurviveLossViaRetransmission) {
  sim::Fabric fabric;
  host::Host server_host(fabric, "server"), client_host(fabric, "client");
  verbs::Device dev_s(server_host), dev_c(client_host);
  isock::ISockStack io_s(dev_s), io_c(dev_c);
  fabric.uplink(1).set_faults(sim::Faults::bernoulli(0.15));  // client egress

  sip::SipConfig scfg;
  scfg.t1 = 20 * kMillisecond;  // keep the lossy test quick
  sip::SipServer server(io_s, sip::Transport::kUd, scfg);
  ASSERT_TRUE(server.start().ok());
  fabric.sim().run_until(fabric.sim().now() + 2 * kMillisecond);
  sip::SipClient client(io_c, sip::Transport::kUd,
                        server_host.endpoint(5060), scfg);
  EXPECT_EQ(client.establish_calls(10, 30 * kSecond), 10u)
      << "SIP timer-A retransmission must recover lost INVITEs";
}

TEST(Integration, PerfHarnessModesAllFunctional) {
  for (perf::Mode m :
       {perf::Mode::kUdSendRecv, perf::Mode::kUdWriteRecord,
        perf::Mode::kRcSendRecv, perf::Mode::kRcRdmaWrite,
        perf::Mode::kRdSendRecv, perf::Mode::kRdWriteRecord}) {
    const auto lat = perf::measure_latency(m, 256, 4);
    EXPECT_GT(lat.half_rtt_us, 10.0) << perf::mode_name(m);
    EXPECT_LT(lat.half_rtt_us, 100.0) << perf::mode_name(m);
    const auto bwr = perf::measure_bandwidth(m, 4 * KiB, 16);
    EXPECT_GT(bwr.goodput_MBps, 10.0) << perf::mode_name(m);
    EXPECT_DOUBLE_EQ(bwr.delivered_frac, 1.0) << perf::mode_name(m);
  }
}

TEST(Integration, SeedChangesLossPatternNotCleanRuns) {
  perf::Options o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  // Clean runs: seed-independent (nothing stochastic on the path).
  EXPECT_DOUBLE_EQ(
      perf::measure_bandwidth(perf::Mode::kUdSendRecv, 64 * KiB, 16, o1)
          .goodput_MBps,
      perf::measure_bandwidth(perf::Mode::kUdSendRecv, 64 * KiB, 16, o2)
          .goodput_MBps);
  // Lossy runs: different seeds, different drop patterns.
  o1.loss_rate = o2.loss_rate = 0.02;
  const auto a =
      perf::measure_bandwidth(perf::Mode::kUdSendRecv, 64 * KiB, 64, o1);
  const auto b =
      perf::measure_bandwidth(perf::Mode::kUdSendRecv, 64 * KiB, 64, o2);
  EXPECT_NE(a.messages_completed, b.messages_completed);
}

TEST(Integration, TcpZeroWindowRecoversViaWindowUpdate) {
  // A slow receiver closing its window must not deadlock the transfer.
  sim::Fabric fabric;
  host::Host a(fabric, "a"), b(fabric, "b");
  host::TcpSocket::Ptr srv;
  std::size_t rx = 0;
  (void)b.tcp().listen(80, [&](host::TcpSocket::Ptr s) {
    srv = s;
    s->on_data([&](ConstByteSpan d, bool) { rx += d.size(); });
  });
  auto cl = *a.tcp().connect({b.addr(), 80});
  bool up = false;
  cl->on_connect([&](Status) { up = true; });
  fabric.sim().run_while_pending([&] { return up; }, kSecond);

  const Bytes data = make_pattern(1 * MiB, 31);
  std::size_t sent = 0;
  std::function<void()> pump = [&] {
    while (sent < data.size()) {
      const std::size_t n = cl->send(ConstByteSpan{data}.subspan(sent));
      if (n == 0) break;
      sent += n;
    }
  };
  cl->on_writable(pump);
  pump();
  const bool done = fabric.sim().run_while_pending(
      [&] { return rx >= data.size(); }, 30 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(rx, data.size());
}

}  // namespace
}  // namespace dgiwarp
